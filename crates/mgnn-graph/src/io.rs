//! Graph and feature I/O: a compact binary snapshot format (magic, version,
//! little-endian arrays) and a whitespace edge-list text format for interop.
//! Round-trip fidelity is covered by tests; the binary reader validates the
//! header and lengths before trusting the payload.

use crate::csr::{CsrGraph, NodeId};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"MGNNCSR1";

/// Serialize a graph to a binary stream.
pub fn write_csr<W: Write>(g: &CsrGraph, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in g.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    Ok(())
}

/// Deserialize a graph from a binary stream, validating invariants.
pub fn read_csr<R: Read>(r: &mut R) -> io::Result<CsrGraph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let n = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    // Sanity cap: refuse absurd sizes before allocating.
    if n > (1 << 33) || m > (1 << 38) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "size out of range",
        ));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(r)?);
    }
    let mut targets = Vec::with_capacity(m);
    let mut buf = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf)?;
        targets.push(NodeId::from_le_bytes(buf));
    }
    CsrGraph::from_parts(offsets, targets)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Write the graph as a directed edge list, one `u v` pair per line.
pub fn write_edge_list<W: Write>(g: &CsrGraph, w: &mut W) -> io::Result<()> {
    let mut bw = io::BufWriter::new(w);
    writeln!(bw, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(bw, "{u} {v}")?;
    }
    bw.flush()
}

/// Parse an edge list (lines of `u v`; `#` comments ignored). The node count
/// is inferred as `max id + 1` unless a larger `min_nodes` is given.
pub fn read_edge_list<R: Read>(r: &mut R, min_nodes: usize) -> io::Result<CsrGraph> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: NodeId = 0;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => {
                let u: NodeId = a
                    .parse()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad node id"))?;
                let v: NodeId = b
                    .parse()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad node id"))?;
                (u, v)
            }
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "short line")),
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = ((max_id as usize) + 1).max(min_nodes).max(1);
    let mut b = crate::builder::GraphBuilder::new(n).directed();
    b.extend(edges);
    Ok(b.build())
}

const FEAT_MAGIC: &[u8; 8] = b"MGNNFEA1";

/// Serialize a feature store (features + labels + class count).
pub fn write_features<W: Write>(f: &crate::FeatureStore, w: &mut W) -> io::Result<()> {
    w.write_all(FEAT_MAGIC)?;
    w.write_all(&(f.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(f.dim() as u64).to_le_bytes())?;
    w.write_all(&(f.num_classes() as u64).to_le_bytes())?;
    for &v in f.raw() {
        w.write_all(&v.to_le_bytes())?;
    }
    for &l in f.labels() {
        w.write_all(&l.to_le_bytes())?;
    }
    Ok(())
}

/// Deserialize a feature store.
pub fn read_features<R: Read>(r: &mut R) -> io::Result<crate::FeatureStore> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != FEAT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad feature magic",
        ));
    }
    let n = read_u64(r)? as usize;
    let dim = read_u64(r)? as usize;
    let classes = read_u64(r)? as usize;
    if n > (1 << 33) || dim > (1 << 20) || classes == 0 || classes > (1 << 24) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "size out of range",
        ));
    }
    let mut data = Vec::with_capacity(n * dim);
    let mut b4 = [0u8; 4];
    for _ in 0..n * dim {
        r.read_exact(&mut b4)?;
        data.push(f32::from_le_bytes(b4));
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        r.read_exact(&mut b4)?;
        let l = u32::from_le_bytes(b4);
        if (l as usize) >= classes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "label out of range",
            ));
        }
        labels.push(l);
    }
    Ok(crate::FeatureStore::from_parts(
        n, dim, data, labels, classes,
    ))
}

const DSET_MAGIC: &[u8; 8] = b"MGNNDST1";

/// Serialize a full [`crate::Dataset`] (graph + features + splits) —
/// lets the benchmark harness cache generated datasets on disk.
pub fn write_dataset<W: Write>(d: &crate::Dataset, w: &mut W) -> io::Result<()> {
    w.write_all(DSET_MAGIC)?;
    w.write_all(&[dataset_kind_tag(d.kind)])?;
    write_csr(&d.graph, w)?;
    write_features(&d.features, w)?;
    for split in [&d.train_nodes, &d.val_nodes, &d.test_nodes] {
        w.write_all(&(split.len() as u64).to_le_bytes())?;
        for &u in split.iter() {
            w.write_all(&u.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize a full dataset.
pub fn read_dataset<R: Read>(r: &mut R) -> io::Result<crate::Dataset> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != DSET_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad dataset magic",
        ));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let kind = dataset_kind_from_tag(tag[0])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad dataset tag"))?;
    let graph = read_csr(r)?;
    let features = read_features(r)?;
    if features.num_nodes() != graph.num_nodes() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "feature/graph node count mismatch",
        ));
    }
    let mut splits: Vec<Vec<NodeId>> = Vec::with_capacity(3);
    for _ in 0..3 {
        let len = read_u64(r)? as usize;
        if len > graph.num_nodes() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "split too large",
            ));
        }
        let mut v = Vec::with_capacity(len);
        let mut b4 = [0u8; 4];
        for _ in 0..len {
            r.read_exact(&mut b4)?;
            let u = NodeId::from_le_bytes(b4);
            if (u as usize) >= graph.num_nodes() {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "split id oob"));
            }
            v.push(u);
        }
        splits.push(v);
    }
    let test_nodes = splits.pop().unwrap();
    let val_nodes = splits.pop().unwrap();
    let train_nodes = splits.pop().unwrap();
    Ok(crate::Dataset {
        kind,
        graph,
        features,
        train_nodes,
        val_nodes,
        test_nodes,
    })
}

fn dataset_kind_tag(k: crate::DatasetKind) -> u8 {
    match k {
        crate::DatasetKind::Arxiv => 0,
        crate::DatasetKind::Products => 1,
        crate::DatasetKind::Reddit => 2,
        crate::DatasetKind::Papers => 3,
    }
}

fn dataset_kind_from_tag(t: u8) -> Option<crate::DatasetKind> {
    match t {
        0 => Some(crate::DatasetKind::Arxiv),
        1 => Some(crate::DatasetKind::Products),
        2 => Some(crate::DatasetKind::Reddit),
        3 => Some(crate::DatasetKind::Papers),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn binary_round_trip() {
        let g = erdos_renyi(200, 800, 3);
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let g2 = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = b"NOTMAGIC".to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_truncated() {
        let g = erdos_renyi(50, 100, 1);
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn edge_list_round_trip() {
        let g = erdos_renyi(100, 300, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&mut buf.as_slice(), g.num_nodes()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_parses_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n1 0\n";
        let g = read_edge_list(&mut text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list(&mut "0 x".as_bytes(), 0).is_err());
        assert!(read_edge_list(&mut "17".as_bytes(), 0).is_err());
    }

    #[test]
    fn edge_list_min_nodes_pads_isolated() {
        let g = read_edge_list(&mut "0 1".as_bytes(), 10).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn features_round_trip() {
        let g = erdos_renyi(80, 240, 2);
        let f = crate::FeatureStore::synthesize(&g, 6, 4, 5);
        let mut buf = Vec::new();
        write_features(&f, &mut buf).unwrap();
        let f2 = read_features(&mut buf.as_slice()).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn features_reject_corrupt_label() {
        let g = erdos_renyi(10, 30, 1);
        let f = crate::FeatureStore::synthesize(&g, 2, 2, 1);
        let mut buf = Vec::new();
        write_features(&f, &mut buf).unwrap();
        // Corrupt the final label to an out-of-range class.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&999u32.to_le_bytes());
        assert!(read_features(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn dataset_round_trip() {
        let d = crate::Dataset::generate(crate::DatasetKind::Arxiv, crate::Scale::Unit, 9);
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let d2 = read_dataset(&mut buf.as_slice()).unwrap();
        assert_eq!(d.kind, d2.kind);
        assert_eq!(d.graph, d2.graph);
        assert_eq!(d.features, d2.features);
        assert_eq!(d.train_nodes, d2.train_nodes);
        assert_eq!(d.val_nodes, d2.val_nodes);
        assert_eq!(d.test_nodes, d2.test_nodes);
    }

    #[test]
    fn dataset_rejects_truncation() {
        let d = crate::Dataset::generate(crate::DatasetKind::Arxiv, crate::Scale::Unit, 3);
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_dataset(&mut buf.as_slice()).is_err());
    }
}
