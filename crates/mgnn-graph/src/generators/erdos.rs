//! Erdős–Rényi G(n, m) generator: `m` undirected edges sampled uniformly
//! without structural bias. Homogeneous degrees (Poisson-like), no hubs —
//! the opposite regime from R-MAT/BA, useful both as a baseline in tests and
//! blended into the reddit-like preset (reddit's degree distribution has a
//! very dense, comparatively flat core).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Generate an undirected G(n, m) graph (approximately `m` edges before
/// dedup; duplicates are merged so the final count can be slightly lower,
/// then doubled by symmetrization).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2, "erdos_renyi: need at least 2 nodes");
    let chunk = 1 << 14;
    let num_chunks = m.div_ceil(chunk);
    let edge_chunks: Vec<Vec<(NodeId, NodeId)>> = (0..num_chunks)
        .into_par_iter()
        .map(|ci| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0xd1b5_4a32_d192_ed03u64.wrapping_mul(ci as u64 + 1)),
            );
            let count = chunk.min(m - ci * chunk);
            let mut out = Vec::with_capacity(count);
            while out.len() < count {
                let u = rng.gen_range(0..n as NodeId);
                let v = rng.gen_range(0..n as NodeId);
                if u != v {
                    out.push((u, v));
                }
            }
            out
        })
        .collect();
    let mut b = GraphBuilder::new(n).with_capacity(2 * m);
    for ch in edge_chunks {
        b.extend(ch);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 300, 7), erdos_renyi(100, 300, 7));
    }

    #[test]
    fn shape() {
        let g = erdos_renyi(1000, 5000, 3);
        assert_eq!(g.num_nodes(), 1000);
        // ~2*5000 directed edges, minus a small dedup/self-loop loss.
        assert!(g.num_edges() > 9000 && g.num_edges() <= 10_000);
        assert!(g.is_symmetric());
    }

    #[test]
    fn homogeneous_degrees() {
        let g = erdos_renyi(2000, 20_000, 5);
        // Max degree should be within a modest factor of the mean for ER.
        assert!((g.max_degree() as f64) < 3.5 * g.avg_degree());
    }

    #[test]
    fn minimum_size() {
        let g = erdos_renyi(2, 1, 0);
        assert_eq!(g.num_edges(), 2);
    }
}
