//! Seeded synthetic graph generators.
//!
//! Four families, chosen to span the structural regimes of the paper's OGB
//! inputs:
//!
//! * [`rmat`] — recursive-matrix (Graph500 style): heavy-tailed degrees,
//!   community-ish self-similarity. Used for the `products`- and
//!   `papers`-like presets.
//! * [`ba`] — Barabási–Albert preferential attachment: clean power law,
//!   large diameter when `m` is small. Used for the `arxiv`-like preset
//!   (the paper notes arxiv's "relatively large diameter and small degree").
//! * [`erdos`] — uniform G(n, m): dense and homogeneous. Used for the
//!   `reddit`-like preset's dense core mixing.
//! * [`sbm`] — stochastic block model: explicit community structure, useful
//!   for partitioner tests where ground-truth clusters exist.
//!
//! Every generator takes an explicit seed and is deterministic across runs
//! and platforms (we use `StdRng` = ChaCha12 seeded from a u64).

pub mod ba;
pub mod erdos;
pub mod rmat;
pub mod sbm;
pub mod ws;

pub use ba::barabasi_albert;
pub use erdos::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use sbm::{sbm, SbmParams};
pub use ws::watts_strogatz;
