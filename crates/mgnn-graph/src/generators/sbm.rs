//! Stochastic block model: `k` equal-size communities, intra-community edge
//! probability `p_in`, inter-community `p_out`. When `p_in >> p_out` the
//! planted partition is the ground-truth optimum, which makes SBM graphs the
//! natural fixture for partitioner-quality tests (a good partitioner should
//! recover a cut close to the planted one).
//!
//! Edges are sampled by expected count per block pair rather than per-pair
//! Bernoulli trials, keeping generation O(edges) instead of O(n²).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stochastic block model parameters.
#[derive(Debug, Clone, Copy)]
pub struct SbmParams {
    /// Number of communities; nodes are assigned round-robin-free,
    /// contiguously: community `c` owns nodes `[c*n/k, (c+1)*n/k)`.
    pub communities: usize,
    /// Intra-community edge probability.
    pub p_in: f64,
    /// Inter-community edge probability.
    pub p_out: f64,
}

/// Generate an undirected SBM graph with `n` nodes.
pub fn sbm(n: usize, params: SbmParams, seed: u64) -> CsrGraph {
    let k = params.communities;
    assert!(
        k >= 1 && n >= k,
        "sbm: need at least one node per community"
    );
    assert!((0.0..=1.0).contains(&params.p_in) && (0.0..=1.0).contains(&params.p_out));
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds: Vec<usize> = (0..=k).map(|c| c * n / k).collect();
    let mut b = GraphBuilder::new(n);

    for ci in 0..k {
        for cj in ci..k {
            let (si, ei) = (bounds[ci], bounds[ci + 1]);
            let (sj, ej) = (bounds[cj], bounds[cj + 1]);
            let ni = ei - si;
            let nj = ej - sj;
            let pairs = if ci == cj {
                ni * (ni.saturating_sub(1)) / 2
            } else {
                ni * nj
            };
            let p = if ci == cj { params.p_in } else { params.p_out };
            let expected = (pairs as f64 * p).round() as usize;
            for _ in 0..expected {
                let u = rng.gen_range(si..ei) as NodeId;
                let v = rng.gen_range(sj..ej) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
        }
    }
    b.build()
}

/// Ground-truth community of node `u` for an SBM graph generated with the
/// same `(n, communities)`.
pub fn sbm_community(u: NodeId, n: usize, communities: usize) -> usize {
    // Inverse of the contiguous assignment above.
    let u = u as usize;
    // community c owns [c*n/k, (c+1)*n/k); solve for c.
    let mut c = u * communities / n;
    // Guard against integer-division boundary drift.
    while c < communities && (c + 1) * n / communities <= u {
        c += 1;
    }
    while c > 0 && c * n / communities > u {
        c -= 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = SbmParams {
            communities: 4,
            p_in: 0.05,
            p_out: 0.001,
        };
        assert_eq!(sbm(400, p, 1), sbm(400, p, 1));
    }

    #[test]
    fn intra_edges_dominate() {
        let p = SbmParams {
            communities: 4,
            p_in: 0.1,
            p_out: 0.001,
        };
        let n = 400;
        let g = sbm(n, p, 3);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if sbm_community(u, n, 4) == sbm_community(v, n, 4) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn community_assignment_partition() {
        let n = 103;
        let k = 4;
        let mut counts = vec![0usize; k];
        for u in 0..n as NodeId {
            counts[sbm_community(u, n, k)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), n);
        // Roughly balanced.
        for &c in &counts {
            assert!(c >= n / k - 1 && c <= n / k + 2);
        }
    }

    #[test]
    fn single_community_is_er_like() {
        let p = SbmParams {
            communities: 1,
            p_in: 0.05,
            p_out: 0.0,
        };
        let g = sbm(200, p, 9);
        assert!(g.num_edges() > 0);
        assert!(g.validate().is_ok());
    }
}
