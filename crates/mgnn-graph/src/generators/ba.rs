//! Barabási–Albert preferential-attachment generator.
//!
//! Each new node attaches to `m` existing nodes with probability
//! proportional to their current degree, yielding a power-law degree
//! distribution with exponent ≈ 3 and — for small `m` — a large effective
//! diameter. This matches the paper's characterization of `ogbn-arxiv`
//! ("relatively large diameter and small degree").
//!
//! Implementation uses the standard repeated-endpoint trick: maintaining a
//! flat list of edge endpoints and sampling uniformly from it is equivalent
//! to degree-proportional sampling.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate an undirected BA graph with `n` nodes, each new node attaching
/// `m` edges. Requires `n > m` and `m >= 1`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "ba: m must be >= 1");
    assert!(n > m, "ba: n must exceed m");
    let mut rng = StdRng::seed_from_u64(seed);

    // Start from a complete graph on m+1 nodes so every seed node
    // already has degree m — a star would strand its leaves at degree 1
    // whenever later attachments never pick them, violating the BA
    // min-degree invariant.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let mut builder = GraphBuilder::new(n).with_capacity(n * m);
    for i in 0..=m {
        for j in (i + 1)..=m {
            builder.add_edge(i as NodeId, j as NodeId);
            endpoints.push(i as NodeId);
            endpoints.push(j as NodeId);
        }
    }

    let mut picked: Vec<NodeId> = Vec::with_capacity(m);
    for u in (m + 1)..n {
        picked.clear();
        // Sample m distinct targets by degree-proportional draws.
        let mut guard = 0;
        while picked.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
            guard += 1;
            if guard > 64 * m {
                // Degenerate corner (tiny graphs): fall back to any distinct node.
                for cand in 0..u as NodeId {
                    if picked.len() >= m {
                        break;
                    }
                    if !picked.contains(&cand) {
                        picked.push(cand);
                    }
                }
            }
        }
        for &t in &picked {
            builder.add_edge(u as NodeId, t);
            endpoints.push(u as NodeId);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(500, 3, 5), barabasi_albert(500, 3, 5));
    }

    #[test]
    fn edge_count_is_exact() {
        let n = 400;
        let m = 3;
        let g = barabasi_albert(n, m, 1);
        // complete seed graph K_{m+1} edges + (n - m - 1) * m attachments,
        // symmetrized (×2); dedup can only remove if a duplicate pair arose —
        // distinct picks prevent that within a node, and a new node can't
        // re-pick old pairs.
        assert_eq!(g.num_edges(), 2 * (m * (m + 1) / 2 + (n - m - 1) * m));
    }

    #[test]
    fn power_law_hub_exists() {
        let g = barabasi_albert(2000, 2, 9);
        assert!(
            g.max_degree() > 20,
            "BA should grow hubs, got {}",
            g.max_degree()
        );
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(300, 4, 2);
        let min_deg = g.nodes().map(|u| g.degree(u)).min().unwrap();
        assert!(min_deg >= 4);
    }

    #[test]
    fn tiny_graph() {
        let g = barabasi_albert(3, 1, 0);
        assert_eq!(g.num_nodes(), 3);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic]
    fn rejects_n_le_m() {
        barabasi_albert(3, 3, 0);
    }
}
