//! Watts–Strogatz small-world generator: a ring lattice of degree `2k`
//! with each edge rewired with probability `beta`. Produces high
//! clustering with tunable diameter — the complement of the hub-dominated
//! R-MAT/BA families, useful for exercising the sampler and partitioner on
//! locality-heavy topologies (low `beta` keeps near-lattice locality that
//! partitioners should exploit almost perfectly).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a Watts–Strogatz graph: `n` nodes on a ring, each connected to
/// its `k` nearest neighbors on each side, each edge rewired with
/// probability `beta ∈ [0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 1, "ws: k must be >= 1");
    assert!(n > 2 * k, "ws: n must exceed 2k");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).with_capacity(n * k);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniform random non-self target.
                let mut t = rng.gen_range(0..n);
                let mut guard = 0;
                while t == u && guard < 16 {
                    t = rng.gen_range(0..n);
                    guard += 1;
                }
                if t != u {
                    b.add_edge(u as NodeId, t as NodeId);
                }
            } else {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::bfs_eccentricity;

    #[test]
    fn deterministic() {
        assert_eq!(
            watts_strogatz(500, 3, 0.1, 7),
            watts_strogatz(500, 3, 0.1, 7)
        );
    }

    #[test]
    fn zero_beta_is_ring_lattice() {
        let g = watts_strogatz(100, 2, 0.0, 1);
        // Every node has exactly 2k = 4 neighbors on the ring.
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4, "node {u}");
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 99));
        assert!(g.has_edge(0, 98));
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let lattice = watts_strogatz(1000, 2, 0.0, 3);
        let small_world = watts_strogatz(1000, 2, 0.3, 3);
        let d0 = bfs_eccentricity(&lattice, 0);
        let d1 = bfs_eccentricity(&small_world, 0);
        assert!(
            d1 < d0 / 3,
            "rewired diameter {d1} should be far below lattice {d0}"
        );
    }

    #[test]
    fn degrees_stay_near_lattice() {
        let g = watts_strogatz(800, 3, 0.2, 9);
        let avg = g.avg_degree();
        assert!((avg - 6.0).abs() < 0.8, "avg degree {avg}");
    }

    #[test]
    #[should_panic]
    fn rejects_too_small_n() {
        watts_strogatz(4, 2, 0.1, 0);
    }
}
