//! R-MAT (Recursive MATrix) generator, Graph500 style.
//!
//! Each edge is drawn by descending `log2(n)` levels of a 2×2 probability
//! matrix `[a b; c d]`; the classic Graph500 setting `a=0.57, b=0.19,
//! c=0.19, d=0.05` yields a heavy-tailed degree distribution similar to web
//! and co-purchase graphs. Edge generation is embarrassingly parallel and
//! deterministic: each rayon chunk derives its RNG from `(seed, chunk_id)`.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// R-MAT quadrant probabilities plus noise.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Probability of the (0,0) quadrant.
    pub a: f64,
    /// Probability of the (0,1) quadrant.
    pub b: f64,
    /// Probability of the (1,0) quadrant.
    pub c: f64,
    /// Per-level multiplicative noise on the quadrant probabilities,
    /// in `[0, 1)`; Graph500 uses 0.1 to smooth the distribution.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // Graph500 reference parameters.
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

impl RmatParams {
    /// The implied (1,1) quadrant probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate an undirected R-MAT graph with `n` nodes (rounded up internally
/// to a power of two for quadrant descent, then mapped back down by
/// rejection) and approximately `m` undirected edges before dedup.
pub fn rmat(n: usize, m: usize, params: RmatParams, seed: u64) -> CsrGraph {
    assert!(n > 0, "rmat: n must be positive");
    let levels = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
    let chunk = 1 << 14;
    let num_chunks = m.div_ceil(chunk);

    let edge_chunks: Vec<Vec<(NodeId, NodeId)>> = (0..num_chunks)
        .into_par_iter()
        .map(|ci| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(ci as u64 + 1)),
            );
            let count = chunk.min(m - ci * chunk);
            let mut out = Vec::with_capacity(count);
            while out.len() < count {
                let (u, v) = sample_edge(&mut rng, levels, &params);
                if (u as usize) < n && (v as usize) < n && u != v {
                    out.push((u, v));
                }
            }
            out
        })
        .collect();

    let mut b = GraphBuilder::new(n).with_capacity(m * 2);
    for ch in edge_chunks {
        b.extend(ch);
    }
    b.build()
}

fn sample_edge(rng: &mut StdRng, levels: usize, p: &RmatParams) -> (NodeId, NodeId) {
    let mut u: u64 = 0;
    let mut v: u64 = 0;
    for _ in 0..levels {
        // Per-level noisy quadrant probabilities.
        let jitter = |x: f64, r: &mut StdRng| {
            let f = 1.0 + p.noise * (r.gen::<f64>() * 2.0 - 1.0);
            x * f
        };
        let a = jitter(p.a, rng);
        let b = jitter(p.b, rng);
        let c = jitter(p.c, rng);
        let d = jitter(p.d(), rng);
        let sum = a + b + c + d;
        let r = rng.gen::<f64>() * sum;
        u <<= 1;
        v <<= 1;
        if r < a {
            // (0,0): nothing to add
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as NodeId, v as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let g1 = rmat(1000, 5000, RmatParams::default(), 42);
        let g2 = rmat(1000, 5000, RmatParams::default(), 42);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat(1000, 5000, RmatParams::default(), 1);
        let g2 = rmat(1000, 5000, RmatParams::default(), 2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn basic_shape() {
        let g = rmat(2048, 10_000, RmatParams::default(), 7);
        assert_eq!(g.num_nodes(), 2048);
        assert!(g.num_edges() > 10_000); // symmetrized, some dedup loss
        assert!(g.is_symmetric());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn heavy_tail_present() {
        let g = rmat(4096, 40_000, RmatParams::default(), 3);
        // A heavy-tailed graph's max degree vastly exceeds its average.
        assert!(g.max_degree() as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn non_power_of_two_n() {
        let g = rmat(1500, 6000, RmatParams::default(), 9);
        assert_eq!(g.num_nodes(), 1500);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(512, 4000, RmatParams::default(), 11);
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
        }
    }
}
