//! Persistent worker pool with deterministic chunk scheduling.
//!
//! One global pool is spawned lazily on first use, sized by
//! `MGNN_THREADS` (when set to a positive integer) or
//! [`std::thread::available_parallelism`]. Parallel calls split their
//! input into chunks whose boundaries depend **only on the input
//! length** ([`chunk_len`] / [`num_chunks`]) — never on the thread
//! count or on timing — and combine per-chunk results in chunk-index
//! order, so every parallel operation in this crate returns
//! bitwise-identical results at any thread count.
//!
//! Scheduling model: the caller of [`run`] announces the job to up to
//! `threads − 1` helper workers and then executes chunks itself, so a
//! parallel call never blocks waiting for a free worker; with one
//! thread (or a single chunk) the call degrades to an inline
//! sequential loop over the same chunk structure. Chunk indices are
//! claimed with an atomic counter, which makes the *assignment* of
//! chunks to threads racy — but never the result, because each chunk
//! is self-contained and chunk outputs are combined by index.
//!
//! Panics inside a chunk are caught, the job is poisoned (remaining
//! chunks are skipped), and the panic resumes on the calling thread
//! once every in-flight worker has left the job.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound on chunks per parallel call. A fixed constant (rather
/// than a multiple of the thread count) is what makes chunk boundaries
/// a pure function of input length.
const TARGET_CHUNKS: usize = 64;

/// Deterministic chunk length for an input of `len` items. Depends
/// only on `len`.
pub fn chunk_len(len: usize) -> usize {
    len.div_ceil(TARGET_CHUNKS).max(1)
}

/// Number of chunks an input of `len` items is split into. Depends
/// only on `len`; at most [`TARGET_CHUNKS`].
pub fn num_chunks(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        len.div_ceil(chunk_len(len))
    }
}

/// Bookkeeping shared between the job owner and helper workers.
struct JobState {
    /// Chunks not yet executed (or skipped after poisoning).
    pending_chunks: usize,
    /// Workers currently inside [`execute_chunks`] for this job.
    active_workers: usize,
}

/// One parallel call, announced by reference to the workers. Lives on
/// the owner's stack; the owner only returns after `pending_chunks`
/// and `active_workers` both reach zero and every queued announcement
/// has been purged, so worker-held references never dangle.
struct Job {
    /// The chunk executor (borrowed from the owner's frame).
    func: *const (dyn Fn(usize) + Sync),
    /// Next chunk index to claim.
    next: AtomicUsize,
    num_chunks: usize,
    /// Set when a chunk panicked; later chunks are skipped.
    poisoned: AtomicBool,
    /// First panic payload, replayed on the owner thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    state: Mutex<JobState>,
    /// Signalled when `pending_chunks == 0 && active_workers == 0`.
    done: Condvar,
}

/// Queue entry pointing at an owner-stack [`Job`].
#[derive(Clone, Copy, PartialEq, Eq)]
struct JobRef(*const Job);
// SAFETY: the owner keeps the Job alive until all queued refs are
// purged and all in-flight workers have checked out (see `run`).
unsafe impl Send for JobRef {}

struct Shared {
    queue: Mutex<Vec<JobRef>>,
    ready: Condvar,
}

struct Pool {
    shared: &'static Shared,
    /// Helper workers spawned (total threads = workers + caller).
    workers: usize,
}

thread_local! {
    /// Set inside pool workers: nested parallel calls run inline.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread cap on threads used by `run` (0 = no cap). Test and
    /// diagnostic hook; results are identical at any cap.
    static MAX_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::env::var("MGNN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            queue: Mutex::new(Vec::new()),
            ready: Condvar::new(),
        }));
        let workers = threads - 1;
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("mgnn-par-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, workers }
    })
}

/// Total threads the pool can bring to bear (helpers + the caller).
pub fn current_num_threads() -> usize {
    pool().workers + 1
}

/// Run `f` with parallel calls *from this thread* capped at `threads`
/// threads (1 = fully inline). The cap changes scheduling only — the
/// deterministic chunk structure guarantees identical results — so
/// this exists for tests pinning that contract and for measuring
/// thread scaling.
pub fn with_max_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads >= 1, "thread cap must be at least 1");
    MAX_THREADS.with(|m| {
        struct Reset<'a>(&'a Cell<usize>, usize);
        impl Drop for Reset<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _reset = Reset(m, m.get());
        m.set(threads);
        f()
    })
}

fn worker_loop(shared: &'static Shared) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let job_ref = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop() {
                    // Check in while still holding the queue lock so the
                    // owner's purge can't miss an in-flight worker.
                    unsafe { &*j.0 }.state.lock().unwrap().active_workers += 1;
                    break j;
                }
                q = shared.ready.wait(q).unwrap();
            }
        };
        let job = unsafe { &*job_ref.0 };
        execute_chunks(job);
        let mut st = job.state.lock().unwrap();
        st.active_workers -= 1;
        if st.pending_chunks == 0 && st.active_workers == 0 {
            job.done.notify_all();
        }
    }
}

/// Claim and execute chunks of `job` until none remain.
fn execute_chunks(job: &Job) {
    let f = unsafe { &*job.func };
    loop {
        let c = job.next.fetch_add(1, Ordering::Relaxed);
        if c >= job.num_chunks {
            return;
        }
        if !job.poisoned.load(Ordering::Relaxed) {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(c))) {
                job.poisoned.store(true, Ordering::Relaxed);
                let mut p = job.panic.lock().unwrap();
                if p.is_none() {
                    *p = Some(payload);
                }
            }
        }
        let mut st = job.state.lock().unwrap();
        st.pending_chunks -= 1;
        if st.pending_chunks == 0 && st.active_workers == 0 {
            job.done.notify_all();
        }
    }
}

/// Execute `f(0), f(1), …, f(num_chunks - 1)`, each chunk exactly
/// once, across the pool. Returns after every chunk has completed.
/// The *order and thread placement* of chunks is unspecified; callers
/// obtain determinism by making chunks independent and combining
/// per-chunk results in index order.
pub fn run(num_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if num_chunks == 0 {
        return;
    }
    let p = pool();
    let cap = MAX_THREADS.with(|m| m.get());
    let avail = if cap == 0 {
        p.workers
    } else {
        p.workers.min(cap - 1)
    };
    let helpers = avail.min(num_chunks - 1);
    if helpers == 0 || IS_WORKER.with(|w| w.get()) {
        // Inline sequential execution of the same chunk structure —
        // bitwise-identical results, zero scheduling overhead.
        for c in 0..num_chunks {
            f(c);
        }
        return;
    }

    // Erase the borrow's lifetime to store it in the type-erased Job.
    // SAFETY: `run` does not return until every queued JobRef is
    // purged and every in-flight worker has checked out, so no worker
    // can observe `func` after `f`'s frame is gone.
    let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let job = Job {
        func: f_erased as *const _,
        next: AtomicUsize::new(0),
        num_chunks,
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        state: Mutex::new(JobState {
            pending_chunks: num_chunks,
            active_workers: 0,
        }),
        done: Condvar::new(),
    };
    {
        let mut q = p.shared.queue.lock().unwrap();
        for _ in 0..helpers {
            q.push(JobRef(&job));
        }
    }
    if helpers == 1 {
        p.shared.ready.notify_one();
    } else {
        p.shared.ready.notify_all();
    }

    // The owner works too — a parallel call never waits for a free
    // worker to make progress.
    execute_chunks(&job);

    // Purge announcements nobody claimed; workers that did claim one
    // are counted in `active_workers` and will check out.
    {
        let me = JobRef(&job);
        let mut q = p.shared.queue.lock().unwrap();
        q.retain(|r| *r != me);
    }
    {
        let mut st = job.state.lock().unwrap();
        while st.pending_chunks > 0 || st.active_workers > 0 {
            st = job.done.wait(st).unwrap();
        }
    }
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunking_is_a_pure_function_of_len() {
        assert_eq!(num_chunks(0), 0);
        assert_eq!(num_chunks(1), 1);
        assert_eq!(num_chunks(64), 64);
        assert_eq!(num_chunks(65), 33); // chunk_len 2
        assert_eq!(num_chunks(128), 64);
        assert_eq!(num_chunks(129), 43); // chunk_len 3
        for len in [0usize, 1, 7, 63, 64, 65, 1000, 1 << 20] {
            let n = num_chunks(len);
            assert!(n <= TARGET_CHUNKS);
            if len > 0 {
                // Chunks tile the input exactly.
                assert!(chunk_len(len) * n >= len);
                assert!(chunk_len(len) * (n - 1) < len);
            }
        }
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let counts: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(0)).collect();
        run(40, &|c| {
            counts[c].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            run(8, &|c| {
                if c == 3 {
                    panic!("chunk 3 exploded");
                }
            });
        });
        let err = result.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("chunk 3 exploded"), "got: {msg}");
    }

    #[test]
    fn max_threads_cap_restores_on_exit() {
        let before = MAX_THREADS.with(|m| m.get());
        with_max_threads(1, || {
            assert_eq!(MAX_THREADS.with(|m| m.get()), 1);
            let total: u64 = {
                let acc = AtomicU64::new(0);
                run(10, &|c| {
                    acc.fetch_add(c as u64, Ordering::Relaxed);
                });
                acc.load(Ordering::Relaxed)
            };
            assert_eq!(total, 45);
        });
        assert_eq!(MAX_THREADS.with(|m| m.get()), before);
    }
}
