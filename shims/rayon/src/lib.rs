//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the exact parallel-iterator surface it uses, implemented
//! **sequentially**. This is a deliberate choice beyond the offline
//! constraint: the engine parallelizes across trainer threads (see
//! `massivegnn::engine`), and nested data-parallelism inside each
//! trainer would oversubscribe cores; keeping the inner loops
//! sequential also makes every fold/reduce bitwise deterministic,
//! which the engine's reproducibility guarantee relies on.
//!
//! The wrappers preserve rayon's shapes (`fold` yields per-split
//! accumulators that `reduce` combines; `partition_map` splits by
//! [`iter::Either`]) so call sites stay source-compatible with real
//! rayon if it is ever swapped back in.

pub mod iter {
    //! Parallel-iterator adapters over a plain [`Iterator`].

    /// Two-way branch used by [`Par::partition_map`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Either<L, R> {
        /// Goes to the first output collection.
        Left(L),
        /// Goes to the second output collection.
        Right(R),
    }

    /// "Parallel" iterator: a zero-cost wrapper over a sequential iterator.
    pub struct Par<I>(pub(crate) I);

    impl<I: Iterator> Par<I> {
        /// Map each item.
        pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
            Par(self.0.map(f))
        }

        /// Flat-map through a serial iterator, as rayon's `flat_map_iter`.
        pub fn flat_map_iter<O, F>(self, f: F) -> Par<std::iter::FlatMap<I, O, F>>
        where
            O: IntoIterator,
            F: FnMut(I::Item) -> O,
        {
            Par(self.0.flat_map(f))
        }

        /// Pair each item with its index.
        pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
            Par(self.0.enumerate())
        }

        /// Consume with a side-effecting closure.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// Fold into per-split accumulators (a single split here).
        pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Par<std::iter::Once<T>>
        where
            ID: Fn() -> T,
            F: FnMut(T, I::Item) -> T,
        {
            Par(std::iter::once(self.0.fold(identity(), fold_op)))
        }

        /// Reduce all items (or the identity when empty).
        pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
        where
            ID: Fn() -> I::Item,
            F: FnMut(I::Item, I::Item) -> I::Item,
        {
            let mut op = op;
            self.0.reduce(&mut op).unwrap_or_else(identity)
        }

        /// Collect into any `FromIterator` collection.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// Sum the items.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Split items into two collections according to `f`.
        pub fn partition_map<A, B, CA, CB, F>(self, mut f: F) -> (CA, CB)
        where
            CA: Default + Extend<A>,
            CB: Default + Extend<B>,
            F: FnMut(I::Item) -> Either<A, B>,
        {
            let mut left = CA::default();
            let mut right = CB::default();
            for item in self.0 {
                match f(item) {
                    Either::Left(a) => left.extend(std::iter::once(a)),
                    Either::Right(b) => right.extend(std::iter::once(b)),
                }
            }
            (left, right)
        }
    }

    /// Conversion into a "parallel" iterator (by value).
    pub trait IntoParallelIterator {
        /// Item type.
        type Item;
        /// Underlying sequential iterator.
        type Iter: Iterator<Item = Self::Item>;

        /// Enter the parallel-iterator API.
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl<T, I: IntoIterator<Item = T>> IntoParallelIterator for I {
        type Item = T;
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> Par<<I as IntoIterator>::IntoIter> {
            Par(self.into_iter())
        }
    }

    /// Conversion into a borrowing "parallel" iterator (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed item type.
        type Item: 'a;
        /// Underlying sequential iterator.
        type Iter: Iterator<Item = Self::Item>;

        /// Enter the parallel-iterator API by reference.
        fn par_iter(&'a self) -> Par<Self::Iter>;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Par<std::slice::Iter<'a, T>> {
            Par(self.iter())
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Par<std::slice::Iter<'a, T>> {
            Par(self.as_slice().iter())
        }
    }
}

pub mod slice {
    //! Slice extension traits (`par_chunks_mut`, `par_sort_unstable`).

    use super::iter::Par;

    /// Mutable-slice extensions mirroring `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunks of `size` elements.
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;

        /// Unstable in-place sort.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par(self.chunks_mut(size))
        }

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable()
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::iter::{IntoParallelIterator, IntoParallelRefIterator};
    pub use super::slice::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::iter::{Either, IntoParallelIterator, IntoParallelRefIterator};
    use super::slice::ParallelSliceMut;

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<u32> = (0u32..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn fold_reduce_shape() {
        let total: Vec<f32> = (0usize..4)
            .into_par_iter()
            .fold(
                || vec![0.0f32; 3],
                |mut acc, k| {
                    for a in &mut acc {
                        *a += k as f32;
                    }
                    acc
                },
            )
            .reduce(
                || vec![0.0f32; 3],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(total, vec![6.0, 6.0, 6.0]);
    }

    #[test]
    fn partition_map_splits() {
        let v = vec![1u32, 2, 3, 4, 5];
        let (even, odd): (Vec<u32>, Vec<u32>) = v.par_iter().partition_map(|&x| {
            if x % 2 == 0 {
                Either::Left(x)
            } else {
                Either::Right(x)
            }
        });
        assert_eq!(even, vec![2, 4]);
        assert_eq!(odd, vec![1, 3, 5]);
    }

    #[test]
    fn chunks_and_sort() {
        let mut v = vec![5u32, 3, 1, 4, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        let mut w = vec![0u32; 6];
        w.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(w, vec![0, 0, 1, 1, 2, 2]);
    }
}
