//! Offline stand-in for the `rayon` crate — now actually parallel.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the exact parallel-iterator surface it uses. Earlier
//! revisions implemented it sequentially; this version executes on a
//! persistent worker pool (see [`pool`]) sized by `MGNN_THREADS` or
//! [`std::thread::available_parallelism`].
//!
//! # Determinism contract
//!
//! Every operation splits its input into chunks whose boundaries are a
//! **pure function of input length** ([`pool::chunk_len`]), maps or
//! folds each chunk in ascending index order, and combines per-chunk
//! results in chunk order. Consequently `map`, `for_each`, `fold` +
//! `reduce`, `collect`, `sum`, `partition_map`, `par_chunks_mut`, and
//! `par_sort_unstable` return bitwise-identical results at **any**
//! thread count — the engine's bitwise-`RunReport` reproducibility
//! oracle holds whether `MGNN_THREADS=1` or 64. Only wall-clock time
//! changes with the thread count.
//!
//! The wrappers preserve rayon's shapes (`fold` yields per-chunk
//! accumulators that `reduce` combines; `partition_map` splits by
//! [`iter::Either`]) so call sites stay source-compatible with real
//! rayon if it is ever swapped back in. Closures take rayon's `Fn +
//! Sync` bounds because they genuinely run concurrently.

pub mod pool;

pub use pool::current_num_threads;

pub mod iter {
    //! Parallel-iterator adapters over indexed sources.

    use crate::pool;

    /// Two-way branch used by [`Par::partition_map`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Either<L, R> {
        /// Goes to the first output collection.
        Left(L),
        /// Goes to the second output collection.
        Right(R),
    }

    /// An indexed source of items that can be driven range-by-range
    /// from multiple threads.
    ///
    /// `len()` is the size of the *index domain* used for chunking;
    /// `drive(lo, hi, sink)` emits the items of indices `lo..hi` into
    /// `sink` in ascending index order. Most sources emit exactly one
    /// item per index; [`FlatMapIter`] may emit any number per index
    /// (its `len()` is the outer length), which is why combination
    /// always happens through per-chunk buffers rather than fixed
    /// per-item slots.
    pub trait ParSource: Sync {
        /// Item type produced by this source.
        type Item: Send;

        /// Size of the index domain.
        fn len(&self) -> usize;

        /// Whether the index domain is empty.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Emit the items of indices `lo..hi`, in ascending order.
        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Self::Item));
    }

    /// Write handle for disjoint per-chunk result slots.
    struct SlotPtr<R>(*mut Option<R>);
    unsafe impl<R: Send> Sync for SlotPtr<R> {}

    impl<R> SlotPtr<R> {
        /// # Safety
        /// Each `idx` must be written by at most one thread, within
        /// the allocation, while the owner keeps the slots alive.
        unsafe fn write(&self, idx: usize, val: R) {
            *self.0.add(idx) = Some(val);
        }
    }

    /// Run `per_chunk(lo, hi)` over the deterministic chunk grid of an
    /// input of length `len` and return the results in chunk order.
    pub(crate) fn run_chunked<R: Send>(
        len: usize,
        per_chunk: impl Fn(usize, usize) -> R + Sync,
    ) -> Vec<R> {
        let nc = pool::num_chunks(len);
        let cl = pool::chunk_len(len);
        let mut slots: Vec<Option<R>> = (0..nc).map(|_| None).collect();
        let out = SlotPtr(slots.as_mut_ptr());
        pool::run(nc, &|c| {
            let lo = c * cl;
            let hi = (lo + cl).min(len);
            let r = per_chunk(lo, hi);
            // SAFETY: each chunk index writes only its own slot, and
            // `pool::run` joins all chunks before returning.
            unsafe { out.write(c, r) };
        });
        slots
            .into_iter()
            .map(|s| s.expect("pool executed every chunk"))
            .collect()
    }

    /// Parallel iterator over a [`ParSource`].
    pub struct Par<S>(pub(crate) S);

    /// Map adapter: applies `f` to each item.
    pub struct Map<S, F> {
        src: S,
        f: F,
    }

    impl<S: ParSource, O: Send, F: Fn(S::Item) -> O + Sync> ParSource for Map<S, F> {
        type Item = O;

        fn len(&self) -> usize {
            self.src.len()
        }

        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(O)) {
            self.src.drive(lo, hi, &mut |x| sink((self.f)(x)));
        }
    }

    /// Flat-map adapter: each index may emit any number of items.
    pub struct FlatMapIter<S, F> {
        src: S,
        f: F,
    }

    impl<S, I, F> ParSource for FlatMapIter<S, F>
    where
        S: ParSource,
        I: IntoIterator,
        I::Item: Send,
        F: Fn(S::Item) -> I + Sync,
    {
        type Item = I::Item;

        fn len(&self) -> usize {
            self.src.len()
        }

        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(I::Item)) {
            self.src.drive(lo, hi, &mut |x| {
                for y in (self.f)(x) {
                    sink(y);
                }
            });
        }
    }

    /// Enumerate adapter. Valid only over one-item-per-index sources
    /// (everything except [`FlatMapIter`], which no call site
    /// enumerates).
    pub struct Enumerate<S>(S);

    impl<S: ParSource> ParSource for Enumerate<S> {
        type Item = (usize, S::Item);

        fn len(&self) -> usize {
            self.0.len()
        }

        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut((usize, S::Item))) {
            let mut idx = lo;
            self.0.drive(lo, hi, &mut |x| {
                sink((idx, x));
                idx += 1;
            });
        }
    }

    /// Per-chunk accumulators produced by [`Par::fold`], combined in
    /// chunk order by [`Folded::reduce`].
    pub struct Folded<T>(Vec<T>);

    impl<T> Folded<T> {
        /// Combine the per-chunk accumulators sequentially, in chunk
        /// order (or produce the identity when the input was empty).
        pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
        where
            ID: Fn() -> T,
            F: FnMut(T, T) -> T,
        {
            let mut op = op;
            self.0.into_iter().reduce(&mut op).unwrap_or_else(identity)
        }
    }

    impl<S: ParSource> Par<S> {
        /// Map each item.
        pub fn map<O, F>(self, f: F) -> Par<Map<S, F>>
        where
            O: Send,
            F: Fn(S::Item) -> O + Sync,
        {
            Par(Map { src: self.0, f })
        }

        /// Flat-map through a serial iterator, as rayon's `flat_map_iter`.
        pub fn flat_map_iter<I, F>(self, f: F) -> Par<FlatMapIter<S, F>>
        where
            I: IntoIterator,
            I::Item: Send,
            F: Fn(S::Item) -> I + Sync,
        {
            Par(FlatMapIter { src: self.0, f })
        }

        /// Pair each item with its index.
        pub fn enumerate(self) -> Par<Enumerate<S>> {
            Par(Enumerate(self.0))
        }

        /// Consume with a side-effecting closure (run on the pool).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(S::Item) + Sync,
        {
            let src = self.0;
            run_chunked(src.len(), |lo, hi| src.drive(lo, hi, &mut |x| f(x)));
        }

        /// Fold each chunk into its own accumulator, in index order.
        /// The accumulators come back in chunk order, so a subsequent
        /// [`Folded::reduce`] is bitwise-deterministic at any thread
        /// count.
        pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Folded<T>
        where
            T: Send,
            ID: Fn() -> T + Sync,
            F: Fn(T, S::Item) -> T + Sync,
        {
            let src = self.0;
            Folded(run_chunked(src.len(), |lo, hi| {
                let mut acc = Some(identity());
                src.drive(lo, hi, &mut |x| {
                    acc = Some(fold_op(acc.take().expect("accumulator present"), x));
                });
                acc.expect("accumulator present")
            }))
        }

        /// Reduce all items (or the identity when empty). Chunk-local
        /// reductions happen in index order and are combined in chunk
        /// order.
        pub fn reduce<ID, F>(self, identity: ID, op: F) -> S::Item
        where
            ID: Fn() -> S::Item,
            F: Fn(S::Item, S::Item) -> S::Item + Sync,
        {
            let src = self.0;
            run_chunked(src.len(), |lo, hi| {
                let mut acc: Option<S::Item> = None;
                src.drive(lo, hi, &mut |x| {
                    acc = Some(match acc.take() {
                        Some(a) => op(a, x),
                        None => x,
                    });
                });
                acc.expect("non-empty chunk reduces to a value")
            })
            .into_iter()
            .reduce(&op)
            .unwrap_or_else(identity)
        }

        /// Collect into any `FromIterator` collection, in index order.
        pub fn collect<C: FromIterator<S::Item>>(self) -> C {
            let src = self.0;
            let parts = run_chunked(src.len(), |lo, hi| {
                let mut part = Vec::with_capacity(hi - lo);
                src.drive(lo, hi, &mut |x| part.push(x));
                part
            });
            parts.into_iter().flatten().collect()
        }

        /// Sum the items: per-chunk partial sums in index order,
        /// combined in chunk order.
        pub fn sum<Su>(self) -> Su
        where
            Su: std::iter::Sum<S::Item> + std::iter::Sum<Su> + Send,
        {
            let src = self.0;
            run_chunked(src.len(), |lo, hi| {
                let mut part = Vec::with_capacity(hi - lo);
                src.drive(lo, hi, &mut |x| part.push(x));
                part.into_iter().sum::<Su>()
            })
            .into_iter()
            .sum()
        }

        /// Split items into two collections according to `f`,
        /// preserving index order within each side.
        pub fn partition_map<A, B, CA, CB, F>(self, f: F) -> (CA, CB)
        where
            A: Send,
            B: Send,
            CA: Default + Extend<A>,
            CB: Default + Extend<B>,
            F: Fn(S::Item) -> Either<A, B> + Sync,
        {
            let src = self.0;
            let parts = run_chunked(src.len(), |lo, hi| {
                let mut left = Vec::new();
                let mut right = Vec::new();
                src.drive(lo, hi, &mut |x| match f(x) {
                    Either::Left(a) => left.push(a),
                    Either::Right(b) => right.push(b),
                });
                (left, right)
            });
            let mut left = CA::default();
            let mut right = CB::default();
            for (l, r) in parts {
                left.extend(l);
                right.extend(r);
            }
            (left, right)
        }
    }

    /// Conversion into a parallel iterator (by value).
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Underlying indexed source.
        type Source: ParSource<Item = Self::Item>;

        /// Enter the parallel-iterator API.
        fn into_par_iter(self) -> Par<Self::Source>;
    }

    macro_rules! range_par_source {
        ($t:ty) => {
            impl ParSource for std::ops::Range<$t> {
                type Item = $t;

                fn len(&self) -> usize {
                    if self.end > self.start {
                        (self.end - self.start) as usize
                    } else {
                        0
                    }
                }

                fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut($t)) {
                    for i in lo..hi {
                        sink(self.start + i as $t);
                    }
                }
            }

            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Source = std::ops::Range<$t>;

                fn into_par_iter(self) -> Par<Self::Source> {
                    Par(self)
                }
            }
        };
    }

    range_par_source!(usize);
    range_par_source!(u32);
    range_par_source!(u64);

    /// Borrowed-slice source (`par_iter`).
    pub struct SliceSource<'a, T>(&'a [T]);

    impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
        type Item = &'a T;

        fn len(&self) -> usize {
            self.0.len()
        }

        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(&'a T)) {
            for x in &self.0[lo..hi] {
                sink(x);
            }
        }
    }

    /// Conversion into a borrowing parallel iterator (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed item type.
        type Item: Send + 'a;
        /// Underlying indexed source.
        type Source: ParSource<Item = Self::Item>;

        /// Enter the parallel-iterator API by reference.
        fn par_iter(&'a self) -> Par<Self::Source>;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Source = SliceSource<'a, T>;

        fn par_iter(&'a self) -> Par<SliceSource<'a, T>> {
            Par(SliceSource(self))
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Source = SliceSource<'a, T>;

        fn par_iter(&'a self) -> Par<SliceSource<'a, T>> {
            Par(SliceSource(self.as_slice()))
        }
    }
}

pub mod slice {
    //! Slice extension traits (`par_chunks_mut`, `par_sort_unstable`).

    use crate::pool;

    struct SyncPtr<T>(*mut T);
    unsafe impl<T: Send> Sync for SyncPtr<T> {}

    impl<T> SyncPtr<T> {
        /// Offset pointer; `&self` receiver keeps closures capturing
        /// the Sync wrapper rather than the raw pointer field.
        fn at(&self, offset: usize) -> *mut T {
            unsafe { self.0.add(offset) }
        }
    }

    /// Parallel iterator over disjoint mutable chunks of a slice.
    pub struct ParChunksMut<'a, T> {
        data: &'a mut [T],
        size: usize,
    }

    /// [`ParChunksMut`] with indices attached.
    pub struct EnumChunksMut<'a, T> {
        data: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair each chunk with its index.
        pub fn enumerate(self) -> EnumChunksMut<'a, T> {
            EnumChunksMut {
                data: self.data,
                size: self.size,
            }
        }

        /// Run `f` on every chunk (pool-parallel, disjoint chunks).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            self.enumerate().for_each(|(_, chunk)| f(chunk));
        }
    }

    impl<T: Send> EnumChunksMut<'_, T> {
        /// Run `f` on every `(index, chunk)` pair. Caller chunks are
        /// grouped into pool tasks by the same length-only policy as
        /// every other operation; each task reconstructs its disjoint
        /// chunks from the slice base pointer.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            let len = self.data.len();
            let size = self.size;
            if len == 0 {
                return;
            }
            let caller_chunks = len.div_ceil(size);
            let base = SyncPtr(self.data.as_mut_ptr());
            let nc = pool::num_chunks(caller_chunks);
            let cl = pool::chunk_len(caller_chunks);
            pool::run(nc, &|c| {
                let lo = c * cl;
                let hi = (lo + cl).min(caller_chunks);
                for i in lo..hi {
                    let start = i * size;
                    let end = (start + size).min(len);
                    // SAFETY: caller chunks [i*size, i*size+size) are
                    // pairwise disjoint, each visited by exactly one
                    // pool task, and `pool::run` joins before the
                    // borrow of `self.data` ends.
                    let chunk =
                        unsafe { std::slice::from_raw_parts_mut(base.at(start), end - start) };
                    f((i, chunk));
                }
            });
        }
    }

    /// Mutable-slice extensions mirroring `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunks of `size` elements (`size > 0`).
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;

        /// Unstable in-place sort: parallel per-chunk sorts followed by
        /// pairwise merges. Deterministic — the chunk grid and merge
        /// tree depend only on the slice length, and merges take from
        /// the left run on ties.
        fn par_sort_unstable(&mut self)
        where
            T: Ord + Copy + Sync;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            ParChunksMut { data: self, size }
        }

        fn par_sort_unstable(&mut self)
        where
            T: Ord + Copy + Sync,
        {
            let len = self.len();
            // Length-only cutoff: small slices sort inline. The path
            // choice must not depend on the thread count, or results
            // could differ across MGNN_THREADS for types whose equal
            // values are distinguishable.
            const SEQ_CUTOFF: usize = 4096;
            if len <= SEQ_CUTOFF {
                self.sort_unstable();
                return;
            }

            let cl = pool::chunk_len(len);
            let nc = pool::num_chunks(len);
            {
                let base = SyncPtr(self.as_mut_ptr());
                pool::run(nc, &|c| {
                    let lo = c * cl;
                    let hi = (lo + cl).min(len);
                    // SAFETY: chunk ranges are pairwise disjoint.
                    unsafe { std::slice::from_raw_parts_mut(base.at(lo), hi - lo) }.sort_unstable();
                });
            }

            // Iterative pairwise merges, ping-ponging through a
            // scratch buffer. Runs double in width each round; the
            // merge tree is a pure function of `len`.
            let mut scratch: Vec<T> = self.to_vec();
            let mut in_self = true;
            let mut width = cl;
            while width < len {
                let pairs = len.div_ceil(2 * width);
                {
                    let (src_ptr, dst_ptr) = if in_self {
                        (self.as_ptr(), scratch.as_mut_ptr())
                    } else {
                        (scratch.as_ptr(), self.as_mut_ptr())
                    };
                    let src = SyncPtr(src_ptr as *mut T);
                    let dst = SyncPtr(dst_ptr);
                    pool::run(pairs, &|p| {
                        let lo = p * 2 * width;
                        let mid = (lo + width).min(len);
                        let hi = (lo + 2 * width).min(len);
                        // SAFETY: pair output ranges [lo, hi) are
                        // pairwise disjoint; src is only read.
                        unsafe {
                            let left = std::slice::from_raw_parts(src.at(lo), mid - lo);
                            let right = std::slice::from_raw_parts(src.at(mid), hi - mid);
                            let out = std::slice::from_raw_parts_mut(dst.at(lo), hi - lo);
                            merge_left_first(left, right, out);
                        }
                    });
                }
                in_self = !in_self;
                width *= 2;
            }
            if !in_self {
                self.copy_from_slice(&scratch);
            }
        }
    }

    /// Stable two-run merge: ties take from `left` first.
    fn merge_left_first<T: Ord + Copy>(left: &[T], right: &[T], out: &mut [T]) {
        let (mut i, mut j) = (0, 0);
        for slot in out.iter_mut() {
            if i < left.len() && (j >= right.len() || left[i] <= right[j]) {
                *slot = left[i];
                i += 1;
            } else {
                *slot = right[j];
                j += 1;
            }
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::iter::{IntoParallelIterator, IntoParallelRefIterator};
    pub use super::slice::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::iter::{Either, IntoParallelIterator, IntoParallelRefIterator};
    use super::slice::ParallelSliceMut;

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<u32> = (0u32..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn fold_reduce_shape() {
        let total: Vec<f32> = (0usize..4)
            .into_par_iter()
            .fold(
                || vec![0.0f32; 3],
                |mut acc, k| {
                    for a in &mut acc {
                        *a += k as f32;
                    }
                    acc
                },
            )
            .reduce(
                || vec![0.0f32; 3],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(total, vec![6.0, 6.0, 6.0]);
    }

    #[test]
    fn partition_map_splits() {
        let v = vec![1u32, 2, 3, 4, 5];
        let (even, odd): (Vec<u32>, Vec<u32>) = v.par_iter().partition_map(|&x| {
            if x % 2 == 0 {
                Either::Left(x)
            } else {
                Either::Right(x)
            }
        });
        assert_eq!(even, vec![2, 4]);
        assert_eq!(odd, vec![1, 3, 5]);
    }

    #[test]
    fn chunks_and_sort() {
        let mut v = vec![5u32, 3, 1, 4, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        let mut w = vec![0u32; 6];
        w.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(w, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn large_sort_takes_merge_path() {
        // 40 000 elements > the sequential cutoff, with duplicates.
        let mut v: Vec<u32> = (0..40_000u32)
            .map(|i| i.wrapping_mul(2654435761) % 977)
            .collect();
        let mut reference = v.clone();
        reference.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, reference);
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let v: Vec<u32> = (0u32..100)
            .into_par_iter()
            .flat_map_iter(|x| (0..x % 3).map(move |k| x * 10 + k))
            .collect();
        let expected: Vec<u32> = (0u32..100)
            .flat_map(|x| (0..x % 3).map(move |k| x * 10 + k))
            .collect();
        assert_eq!(v, expected);
    }
}
