//! The shim's determinism contract, pinned: every operation returns
//! bitwise-identical results at any thread count, because chunk
//! boundaries depend only on input length and per-chunk results are
//! combined in chunk order.
//!
//! The pool is sized once per process; `setup()` forces `MGNN_THREADS=8`
//! before the first pool touch so these tests exercise real worker
//! threads even on a single-core host, then each case re-runs the same
//! operation under `with_max_threads` caps of 1, 2 and 8 and compares
//! bitwise.

use proptest::prelude::*;
use rayon::iter::{Either, IntoParallelIterator, IntoParallelRefIterator};
use rayon::pool::with_max_threads;
use rayon::prelude::*;
use std::sync::Once;

/// Lengths straddling the chunk-grid breakpoints (TARGET_CHUNKS = 64):
/// below, at, and just past one-item-per-chunk, and around the
/// chunk_len 2→3 step.
const EDGE_LENGTHS: &[usize] = &[0, 1, 2, 63, 64, 65, 127, 128, 129, 1000];

fn setup() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        // Before any pool access: 1 caller + 7 workers.
        std::env::set_var("MGNN_THREADS", "8");
        assert_eq!(rayon::current_num_threads(), 8);
    });
}

/// Run `f` under thread caps 1, 2 and 8; assert all results equal and
/// return the capped-at-1 (fully inline) result.
fn across_thread_counts<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) -> R {
    setup();
    let r1 = with_max_threads(1, &f);
    let r2 = with_max_threads(2, &f);
    let r8 = with_max_threads(8, &f);
    assert_eq!(r1, r2, "1-thread vs 2-thread results differ");
    assert_eq!(r1, r8, "1-thread vs 8-thread results differ");
    r1
}

fn input(len: usize, salt: u32) -> Vec<f32> {
    (0..len as u32)
        .map(|i| {
            let h = i.wrapping_add(salt).wrapping_mul(2_654_435_761);
            ((h % 1013) as f32 - 506.0) / 37.0
        })
        .collect()
}

#[test]
fn map_collect_bitwise_identical_at_edge_lengths() {
    for &len in EDGE_LENGTHS {
        let data = input(len, 1);
        let out = across_thread_counts(|| {
            data.par_iter()
                .map(|&x| x * 1.7 - 0.3)
                .collect::<Vec<f32>>()
        });
        let reference: Vec<f32> = data.iter().map(|&x| x * 1.7 - 0.3).collect();
        assert!(
            out.iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "map/collect diverged from sequential at len {len}"
        );
    }
}

#[test]
fn for_each_indexed_writes_every_slot_once() {
    for &len in EDGE_LENGTHS {
        let out = across_thread_counts(|| {
            let out: Vec<std::sync::atomic::AtomicU32> = (0..len)
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect();
            (0..len).into_par_iter().for_each(|i| {
                out[i].fetch_add(i as u32 + 1, std::sync::atomic::Ordering::Relaxed);
            });
            out.into_iter()
                .map(|a| a.into_inner())
                .collect::<Vec<u32>>()
        });
        assert_eq!(out, (1..=len as u32).collect::<Vec<u32>>(), "len {len}");
    }
}

#[test]
fn fold_reduce_bitwise_identical_across_thread_counts() {
    for &len in EDGE_LENGTHS {
        let data = input(len, 2);
        let total = across_thread_counts(|| {
            data.par_iter()
                .fold(|| 0.0f32, |acc, &x| acc + x * x)
                .reduce(|| 0.0f32, |a, b| a + b)
                .to_bits()
        });
        // Empty input must yield the identity exactly.
        if len == 0 {
            assert_eq!(total, 0.0f32.to_bits());
        }
    }
}

#[test]
fn partition_map_bitwise_identical_and_order_preserving() {
    for &len in EDGE_LENGTHS {
        let data = input(len, 3);
        let (neg, pos) = across_thread_counts(|| {
            data.par_iter()
                .map(|&x| x * 3.1)
                .partition_map::<f32, f32, Vec<f32>, Vec<f32>, _>(|x| {
                    if x < 0.0 {
                        Either::Left(x)
                    } else {
                        Either::Right(x)
                    }
                })
        });
        let ref_neg: Vec<f32> = data.iter().map(|&x| x * 3.1).filter(|&x| x < 0.0).collect();
        let ref_pos: Vec<f32> = data
            .iter()
            .map(|&x| x * 3.1)
            .filter(|&x| x >= 0.0)
            .collect();
        assert_eq!(neg, ref_neg, "left order diverged at len {len}");
        assert_eq!(pos, ref_pos, "right order diverged at len {len}");
    }
}

#[test]
fn flat_map_enumerate_sum_identical_across_thread_counts() {
    for &len in EDGE_LENGTHS {
        let flat = across_thread_counts(|| {
            (0..len)
                .into_par_iter()
                .flat_map_iter(|i| (0..i % 3).map(move |k| (i * 10 + k) as u64))
                .collect::<Vec<u64>>()
        });
        let reference: Vec<u64> = (0..len)
            .flat_map(|i| (0..i % 3).map(move |k| (i * 10 + k) as u64))
            .collect();
        assert_eq!(flat, reference, "flat_map_iter diverged at len {len}");

        let pairs = across_thread_counts(|| {
            (0..len as u64)
                .into_par_iter()
                .enumerate()
                .map(|(i, v)| i as u64 * 1000 + v)
                .sum::<u64>()
        });
        let ref_sum: u64 = (0..len as u64)
            .enumerate()
            .map(|(i, v)| i as u64 * 1000 + v)
            .sum();
        assert_eq!(pairs, ref_sum, "enumerate/sum diverged at len {len}");
    }
}

#[test]
fn par_chunks_mut_identical_across_thread_counts() {
    for &len in EDGE_LENGTHS {
        for chunk in [1usize, 3, 64, 200] {
            let out = across_thread_counts(|| {
                let mut v = vec![0u32; len];
                v.par_chunks_mut(chunk).enumerate().for_each(|(i, c)| {
                    for (j, x) in c.iter_mut().enumerate() {
                        *x = (i * 1000 + j) as u32;
                    }
                });
                v
            });
            let mut reference = vec![0u32; len];
            for (i, c) in reference.chunks_mut(chunk).enumerate() {
                for (j, x) in c.iter_mut().enumerate() {
                    *x = (i * 1000 + j) as u32;
                }
            }
            assert_eq!(
                out, reference,
                "par_chunks_mut diverged at len {len} chunk {chunk}"
            );
        }
    }
}

#[test]
fn par_sort_matches_std_sort_across_thread_counts() {
    // Straddles the 4096 sequential cutoff and lands uneven merge tails.
    for len in [100usize, 4096, 4097, 10_000, 65_537] {
        let data: Vec<u32> = (0..len as u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % 10_007)
            .collect();
        let sorted = across_thread_counts(|| {
            let mut v = data.clone();
            v.par_sort_unstable();
            v
        });
        let mut reference = data.clone();
        reference.sort_unstable();
        assert_eq!(sorted, reference, "par_sort diverged at len {len}");
    }
}

#[test]
fn panic_in_parallel_closure_propagates() {
    setup();
    let result = std::panic::catch_unwind(|| {
        (0..1000usize).into_par_iter().for_each(|i| {
            if i == 777 {
                panic!("item 777");
            }
        });
    });
    assert!(result.is_err(), "panic must cross the pool boundary");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary data and lengths: map+collect, fold+reduce and
    /// partition_map all bitwise-stable across thread counts, and the
    /// order-preserving ops match plain sequential iterators.
    #[test]
    fn shim_ops_deterministic(data in prop::collection::vec(-1e6f32..1e6f32, 0..700)) {
        let collected = across_thread_counts(|| {
            data.par_iter().map(|&x| x.mul_add(0.5, 1.25)).collect::<Vec<f32>>()
        });
        let reference: Vec<f32> = data.iter().map(|&x| x.mul_add(0.5, 1.25)).collect();
        prop_assert!(collected.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()));

        // fold/reduce: pinned across thread counts (chunked order differs
        // from a plain sequential fold by design, but never by threads).
        let _ = across_thread_counts(|| {
            data.par_iter()
                .fold(|| 0.0f64, |acc, &x| acc + f64::from(x))
                .reduce(|| 0.0f64, |a, b| a + b)
                .to_bits()
        });

        let (lo, hi) = across_thread_counts(|| {
            data.par_iter().partition_map::<f32, f32, Vec<f32>, Vec<f32>, _>(|&x| {
                if x < 0.0 { Either::Left(x) } else { Either::Right(x) }
            })
        });
        let ref_lo: Vec<f32> = data.iter().copied().filter(|&x| x < 0.0).collect();
        let ref_hi: Vec<f32> = data.iter().copied().filter(|&x| x >= 0.0).collect();
        prop_assert_eq!(lo, ref_lo);
        prop_assert_eq!(hi, ref_hi);
    }

    /// par_sort_unstable sorts arbitrary data exactly like std.
    #[test]
    fn par_sort_always_sorts(data in prop::collection::vec(0u32..50_000, 0..9000)) {
        let sorted = across_thread_counts(|| {
            let mut v = data.clone();
            v.par_sort_unstable();
            v
        });
        let mut reference = data.clone();
        reference.sort_unstable();
        prop_assert_eq!(sorted, reference);
    }
}
