//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree to JSON text (compact or pretty, insertion-ordered, deterministic)
//! and parses JSON text back into a [`Value`] for round-trip validation.
//!
//! Numbers: integers stay exact (`u64`/`i64`); floats print with Rust's
//! shortest round-trip formatting; non-finite floats become `null` (JSON
//! has no NaN/Infinity).

use serde::Serialize;
pub use serde::Value;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, None, 0);
    out
}

/// Serialize to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, Some(2), 0);
    out
}

/// Lower a serializable value to its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{}` on f64 is Rust's shortest round-trip form, but it
                // drops the decimal point on integral values ("3"), which
                // would re-parse as an integer; keep floats floats.
                let s = format!("{n}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let n = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not reconstructed (the
                            // writer never emits them); lone surrogates
                            // become the replacement character.
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("bad number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::obj([
            ("name", Value::Str("fig8".into())),
            ("count", Value::U64(3)),
            ("t", Value::F64(1.25)),
            ("neg", Value::I64(-4)),
            (
                "rows",
                Value::arr([Value::Bool(true), Value::Null, Value::F64(2.0)]),
            ),
        ]);
        let s = to_string(&v);
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn round_trip_pretty() {
        let v = Value::obj([("a", Value::arr([Value::U64(1), Value::U64(2)]))]);
        let s = to_string_pretty(&v);
        assert!(s.contains('\n'));
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn integral_float_stays_float() {
        let s = to_string(&Value::F64(3.0));
        assert_eq!(s, "3.0");
        assert_eq!(from_str(&s).unwrap(), Value::F64(3.0));
    }

    #[test]
    fn float_precision_survives() {
        for x in [1.0e-9, 0.1 + 0.2, f64::MAX, 5.0e-324] {
            let s = to_string(&Value::F64(x));
            assert_eq!(from_str(&s).unwrap().as_f64(), Some(x), "{s}");
        }
    }

    #[test]
    fn big_u64_exact() {
        let n = u64::MAX;
        let s = to_string(&Value::U64(n));
        assert_eq!(from_str(&s).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn escapes() {
        let v = Value::Str("a\"b\\c\nd\té".into());
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        assert_eq!(
            from_str("\"\\u0041\\u00e9\"").unwrap(),
            Value::Str("Aé".into())
        );
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(to_string(&Value::F64(f64::NAN)), "null");
        assert_eq!(to_string(&Value::F64(f64::INFINITY)), "null");
    }

    #[test]
    fn parse_errors() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,2,]").is_err());
        assert!(from_str("[1] junk").is_err());
        assert!(from_str("\"open").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = from_str(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().get_index(1).unwrap().as_u64(), Some(2));
        assert_eq!(v.get("b"), Some(&Value::Null));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Arr(vec![])), "[]");
        assert_eq!(to_string(&Value::Obj(vec![])), "{}");
        assert_eq!(from_str("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Obj(vec![]));
    }
}
