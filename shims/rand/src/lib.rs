//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal, deterministic implementation of exactly
//! the `rand 0.8` API surface it consumes: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256** seeded via
//! splitmix64 — high-quality and fully reproducible, which is all the
//! simulation needs (no test asserts upstream-rand golden values).

/// Core random source: 64-bit output words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Numeric types uniformly sampleable over a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types (`StdRng` only).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (`SliceRandom::shuffle` only).

    use super::{Rng, SampleUniform};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_half_open(rng, 0, self.len())])
            }
        }
    }
}

/// Prelude re-exporting the common traits, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..=5);
            assert!(y <= 5);
            let f: f32 = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
