//! Offline stand-in for `crossbeam-channel`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a Mutex+Condvar MPMC channel implementing the surface it
//! uses: [`bounded`], [`unbounded`], cloneable [`Sender`]/[`Receiver`],
//! blocking `send`/`recv`, and non-blocking `try_recv`, with
//! disconnect detection on both sides. Semantics match crossbeam's:
//! `send` on a bounded channel blocks while full, errors only once all
//! receivers are gone; `recv` drains remaining messages before
//! reporting disconnection.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// The sending side failed because every receiver was dropped; the
/// unsent message is returned.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// The receiving side found the channel empty with every sender dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// No message available and all senders dropped.
    Disconnected,
}

/// Outcome of a bounded-wait receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait elapsed without a message arriving.
    Timeout,
    /// No message available and all senders dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Producer half; clone freely across threads.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Consumer half; clone freely across threads.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Channel with a fixed capacity; `send` blocks while full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_chan(Some(cap.max(1)))
}

/// Channel with unlimited capacity; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_chan(None)
}

fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Deliver `value`, blocking while the channel is at capacity.
    /// Fails (returning the value) once every receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.chan.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking until one arrives. Fails only
    /// when the channel is empty and every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.not_empty.wait(st).unwrap();
        }
    }

    /// Take the next message, waiting at most `timeout` for one to
    /// arrive. Disconnection still drains queued messages first.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
        }
    }

    /// Take the next message if one is ready, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            // Destroy undeliverable messages now rather than when the
            // last sender goes away. A message can carry live resources
            // (e.g. a one-shot reply Sender); holding it in a queue
            // nobody can ever drain would pin those resources and leave
            // the other side blocked forever. Dropping them here runs
            // their destructors, which is exactly the disconnect signal
            // the other side needs.
            let orphans: VecDeque<T> = std::mem::take(&mut st.queue);
            drop(st);
            drop(orphans);
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // must block until a recv frees a slot
            tx.send(4).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Ok(4));
        t.join().unwrap();
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7)); // drains before reporting disconnect
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn last_receiver_drop_destroys_queued_messages() {
        // A queued message carrying a one-shot reply Sender must be
        // destroyed when the channel becomes undeliverable, so the
        // party waiting on the reply sees a disconnect instead of
        // blocking forever.
        let (reply_tx, reply_rx) = bounded::<u8>(1);
        let (tx, rx) = unbounded::<Sender<u8>>();
        tx.send(reply_tx).unwrap(); // in flight, never received
        drop(rx); // server died with the request still queued
        assert_eq!(reply_rx.recv(), Err(RecvError));
        assert!(tx.send(bounded::<u8>(1).0).is_err(), "sends now fail fast");
    }

    #[test]
    fn recv_timeout_states() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );

        // A message sent from another thread mid-wait is picked up.
        let (tx, rx) = unbounded::<u32>();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(3));
        t.join().unwrap();
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = bounded(1);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        producer.join().unwrap();
    }
}
