//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal benchmark harness covering the surface
//! `benches/micro.rs` uses: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], group `throughput` / `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, and
//! [`Bencher::iter`] / [`Bencher::iter_batched`].
//!
//! Reporting is intentionally simple: each benchmark runs a short
//! calibration pass, then a fixed number of timed samples, and prints
//! the median per-iteration time (plus element throughput when
//! declared). No statistical regression analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Discourage the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput declaration attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (ignored here; every
/// routine call gets a fresh setup value).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so one sample takes roughly a millisecond.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ns[ns.len() / 2]
    }
}

/// Top-level harness state (mostly a namespace in this stand-in).
#[derive(Default)]
pub struct Criterion {
    default_sample_size: Option<usize>,
}

impl Criterion {
    /// Override the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = Some(n);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            sample_size: self.default_sample_size.unwrap_or(20),
            _criterion: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.default_sample_size.unwrap_or(20));
        f(&mut b);
        report(id, &b, None);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Close the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns = b.median_ns();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{id:<50} median {:>12.1} ns/iter{rate}", ns);
}

/// Bundle benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.throughput(Throughput::Elements(64));
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("Dense").to_string(), "Dense");
    }
}
