//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this shim keeps only
//! what the workspace needs: a [`Serialize`] trait that lowers a value to
//! an owned JSON-like [`Value`] tree, which `serde_json` (the sibling
//! shim) renders to text and parses back. Implementations are written by
//! hand (no derive macro in the offline toolchain), which the reports in
//! `massivegnn`/`mgnn-net`/`mgnn-obs` do explicitly.
//!
//! Object fields preserve insertion order, so serialized output is
//! deterministic — a property the benchmark-trajectory tooling relies on.

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; never round-tripped through f64).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with insertion-ordered fields.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Arr(items.into_iter().collect())
    }

    /// Field lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on an array; `None` otherwise.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to f64 (from any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned payload, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed payload, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object payload, if this is an `Obj`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Lower a value to a [`Value`] tree (the shim's stand-in for serde's
/// `Serialize`).
pub trait Serialize {
    /// Convert `self` into an owned value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-2i64).to_value(), Value::I64(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn object_order_and_lookup() {
        let v = Value::obj([("b", Value::U64(1)), ("a", Value::U64(2))]);
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(Value::U64(7).as_f64(), Some(7.0));
        assert_eq!(Value::I64(-7).as_u64(), None);
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
    }
}
