//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a compact property-testing runner covering exactly the
//! surface its tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! `prop_oneof!` unions, `prop::collection::{vec, btree_set}`, the
//! `proptest!` test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertions.
//!
//! Differences from real proptest: cases are sampled from a
//! deterministic per-test RNG (no persisted failure seeds) and there
//! is **no shrinking** — a failing case panics with its inputs via the
//! assertion message. That is sufficient for regression coverage here;
//! the trade was forced by the offline build.

pub mod test_runner {
    //! Test configuration and the runner's RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Marker returned by `prop_assume!` when a case must be discarded.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Subset of proptest's `Config` that the tests actually set.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies during sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// RNG whose stream is fully determined by `seed`.
        pub fn deterministic(seed: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }
    }

    /// Stable FNV-1a hash used to derive a per-test seed from its name.
    pub fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `sample` draws a
    /// fresh value directly (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generate a value, then sample from a strategy built from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.inner.gen_range(self.start..self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.inner.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    /// Type-erased strategy, as produced by [`boxed`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Erase a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.inner.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                rng.inner.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of `element` values.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy; duplicates collapse, so the set may come
    /// out smaller than the drawn size (as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace alias so `prop::collection::vec(..)` works as in proptest.
pub mod prop {
    pub use super::collection;
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions that run a body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                $crate::test_runner::hash_name(stringify!($name)),
            );
            let mut __cases_run: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts: u32 = __config.cases.saturating_mul(20).max(1000);
            while __cases_run < __config.cases {
                if __attempts >= __max_attempts {
                    panic!(
                        "proptest {}: exhausted {} attempts with only {}/{} accepted cases \
                         (prop_assume! rejects too much input)",
                        stringify!($name), __attempts, __cases_run, __config.cases
                    );
                }
                __attempts += 1;
                let __outcome = (|| -> ::core::result::Result<(), $crate::test_runner::Rejected> {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if __outcome.is_ok() {
                    __cases_run += 1;
                }
            }
        }
    )*};
}

/// Assert within a proptest body (panics with the inputs' message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::core::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::core::assert!($cond, $($fmt)+) };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::core::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::core::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::core::assert_ne!($a, $b, $($fmt)+) };
}

/// Discard the current case (does not count towards `cases`) when the
/// sampled input fails a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        let s = (0u32..10, 5usize..8).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((5..18).contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_dependent_sizes() {
        let mut rng = TestRng::deterministic(2);
        let s = (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0u32..10, n)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn oneof_picks_each_arm() {
        let mut rng = TestRng::deterministic(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_assumes(x in 0u32..100, ys in prop::collection::vec(0u32..50, 1..10)) {
            prop_assume!(x > 0);
            prop_assert!(x < 100, "x was {}", x);
            let doubled: Vec<u32> = ys.iter().map(|y| y * 2).collect();
            prop_assert_eq!(doubled.len(), ys.len());
        }
    }
}
