//! Real-thread overlap demo: uses [`massivegnn::pipeline::PrefetchPipeline`]
//! to prepare minibatches on a dedicated thread while the main thread
//! trains, and measures *actual wall-clock* overlap — the mechanism the
//! paper implements with ThreadPoolExecutor + NUMBA, here with native
//! threads and a bounded queue.
//!
//! ```bash
//! cargo run --release --example overlap_pipeline
//! ```

use massivegnn::init::initialize_prefetcher;
use massivegnn::pipeline::PrefetchPipeline;
use massivegnn::PrefetchConfig;
use mgnn_graph::{Dataset, DatasetKind, Scale};
use mgnn_model::{train::forward_backward, Model, SageModel};
use mgnn_net::{CommMetrics, CostModel, SimCluster};
use mgnn_partition::{build_local_partitions, multilevel_partition, split_train_nodes};
use mgnn_sampling::{DataLoader, NeighborSampler};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dataset = Dataset::generate(DatasetKind::Products, Scale::Small, 7);
    let parts = multilevel_partition(&dataset.graph, 2, 7);
    // Emulate real network latency: each remote pull costs 4 ms of wall
    // clock, so the prepare thread has genuine communication to hide.
    let cluster = Arc::new(SimCluster::with_rpc_delay(
        &dataset.features,
        &parts.assignment,
        2,
        std::time::Duration::from_millis(4),
    ));
    let lps = build_local_partitions(&dataset.graph, &parts, &dataset.train_nodes);
    let part = Arc::new(lps.into_iter().next().unwrap());

    let shard = split_train_nodes(&part.train_nodes, 1, 3).remove(0);
    let seeds: Vec<u32> = shard.iter().map(|&g| part.local_id(g).unwrap()).collect();
    let loader = DataLoader::new(seeds, 256, 11);
    let steps = loader.batches_per_epoch();
    let epochs = 2;
    let sampler = NeighborSampler::new(vec![10, 25], 13);
    let metrics = Arc::new(CommMetrics::new());
    let cost = CostModel::default();

    let (prefetcher, init) = initialize_prefetcher(
        &part,
        PrefetchConfig {
            f_h: 0.35,
            delta: 16,
            ..Default::default()
        },
        dataset.num_nodes(),
        &cluster,
        &cost,
        &metrics,
    );
    println!(
        "prefetcher initialized: {} halo nodes buffered ({} KiB persistent)",
        init.buffer_nodes,
        init.persistent_bytes / 1024
    );

    let mut model = SageModel::new(
        &[dataset.features.dim(), 96, dataset.features.num_classes()],
        5,
    );

    // --- overlapped: prepare thread + training thread (this one) ---
    let t0 = Instant::now();
    let pipeline = PrefetchPipeline::spawn(
        prefetcher,
        Arc::clone(&part),
        sampler.clone(),
        loader.clone(),
        Arc::clone(&cluster),
        cost.clone(),
        Arc::clone(&metrics),
        epochs,
        steps,
    );
    let mut batches = 0;
    let mut last_loss = 0.0f32;
    while let Some(batch) = pipeline.next() {
        let stats = forward_backward(
            &mut model,
            &batch.minibatch.blocks,
            &batch.input,
            &batch.labels,
        );
        // Single-trainer "DDP": apply plain SGD on own grads.
        let np = Model::num_params(&model);
        let mut params = vec![0.0f32; np];
        let mut grads = vec![0.0f32; np];
        model.write_params(&mut params);
        model.write_grads(&mut grads);
        for (p, g) in params.iter_mut().zip(&grads) {
            *p -= 0.05 * g;
        }
        model.read_params(&params);
        last_loss = stats.loss;
        batches += 1;
    }
    let overlapped = t0.elapsed();
    let pf = pipeline.join();
    println!(
        "overlapped: {batches} minibatches in {:.2?} (final loss {last_loss:.3}, hit rate {:.1}%)",
        overlapped,
        100.0 * metrics.hit_rate()
    );
    pf.buffer.check_invariants().expect("buffer intact");

    // --- serial reference: prepare then train, same work ---
    let metrics2 = Arc::new(CommMetrics::new());
    let (mut pf2, _) = initialize_prefetcher(
        &part,
        PrefetchConfig {
            f_h: 0.35,
            delta: 16,
            ..Default::default()
        },
        dataset.num_nodes(),
        &cluster,
        &cost,
        &metrics2,
    );
    let mut model2 = SageModel::new(
        &[dataset.features.dim(), 96, dataset.features.num_classes()],
        5,
    );
    let t1 = Instant::now();
    let mut gs = 0u64;
    for epoch in 0..epochs as u64 {
        for seeds in loader.epoch(epoch).iter().take(steps) {
            let batch = pf2.prepare(
                &part, &sampler, seeds, epoch, gs, &cluster, &cost, &metrics2,
            );
            gs += 1;
            forward_backward(
                &mut model2,
                &batch.minibatch.blocks,
                &batch.input,
                &batch.labels,
            );
            let np = Model::num_params(&model2);
            let mut params = vec![0.0f32; np];
            let mut grads = vec![0.0f32; np];
            model2.write_params(&mut params);
            model2.write_grads(&mut grads);
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.05 * g;
            }
            model2.read_params(&params);
        }
    }
    let serial = t1.elapsed();
    println!("serial:     {gs} minibatches in {serial:.2?}");
    println!(
        "wall-clock overlap benefit: {:.1}%",
        100.0 * (1.0 - overlapped.as_secs_f64() / serial.as_secs_f64())
    );
}
