//! Eviction-policy ablation demo: replay the identical sampled halo-node
//! stream from a real partitioned graph through the paper's score-based
//! periodic policy and classic per-access policies (LRU, LFU, random,
//! static), comparing hit rates against bookkeeping effort — the §IV-E
//! trade-off, made concrete.
//!
//! ```bash
//! cargo run --release --example eviction_policies
//! ```

use massivegnn::ablation::{replay_policies, CachePolicy};
use mgnn_graph::{Dataset, DatasetKind, Scale};
use mgnn_partition::{build_local_partitions, multilevel_partition};
use mgnn_sampling::{DataLoader, NeighborSampler};

fn main() {
    let dataset = Dataset::generate(DatasetKind::Products, Scale::Small, 17);
    let parts = multilevel_partition(&dataset.graph, 4, 17);
    let lps = build_local_partitions(&dataset.graph, &parts, &dataset.train_nodes);
    let part = &lps[0];
    let num_local = part.num_local();
    let num_halo = part.num_halo();
    println!(
        "partition 0: {} local nodes, {} halo nodes",
        num_local, num_halo
    );

    // Build the shared access stream: each minibatch's sampled halo set.
    let seeds: Vec<u32> = part
        .train_nodes
        .iter()
        .map(|&g| part.local_id(g).unwrap())
        .collect();
    let loader = DataLoader::new(seeds, 64, 5);
    let sampler = NeighborSampler::new(vec![10, 25], 7);
    let mut stream = Vec::new();
    let mut gs = 0u64;
    for epoch in 0..20u64 {
        for seeds in loader.epoch(epoch).iter() {
            let mb = sampler.sample(part, seeds, epoch, gs);
            gs += 1;
            let (_, halo) = mb.split_local_halo(num_local);
            stream.push(
                halo.iter()
                    .map(|&l| l - num_local as u32)
                    .collect::<Vec<u32>>(),
            );
        }
    }
    println!("stream: {} minibatches", stream.len());

    // Two initializations: the paper's top-degree, and a worst-case one.
    let capacity = num_halo / 4;
    let mut by_degree: Vec<u32> = (0..num_halo as u32).collect();
    by_degree.sort_by_key(|&h| (std::cmp::Reverse(part.halo_degree[h as usize]), h));
    let good_init: Vec<u32> = by_degree[..capacity].to_vec();
    let bad_init: Vec<u32> = by_degree[num_halo - capacity..].to_vec();

    let policies = [
        CachePolicy::ScoreBased {
            gamma: 0.995,
            delta: 32,
        },
        CachePolicy::Static,
        CachePolicy::Lru,
        CachePolicy::Lfu,
        CachePolicy::Random { seed: 3 },
    ];

    for (label, init) in [
        ("top-degree init (paper)", &good_init),
        ("adversarial init", &bad_init),
    ] {
        println!("\n== {label} (capacity {capacity}) ==");
        println!(
            "{:<12} {:>8} {:>14} {:>13}",
            "policy", "hit(%)", "replacements", "maintenance"
        );
        for sim in replay_policies(&policies, num_halo, init, &stream) {
            println!(
                "{:<12} {:>8.1} {:>14} {:>13}",
                sim.policy_name(),
                100.0 * sim.tracker.cumulative(),
                sim.replacements,
                sim.maintenance_events
            );
        }
    }
    println!();
    println!("takeaway: with the paper's top-degree init, bulk periodic eviction matches");
    println!("per-access policies at a fraction of the maintenance rounds; with a bad init,");
    println!("the adaptive policies recover while static cannot.");
}
