//! Quickstart: train a 2-layer GraphSAGE on a products-like distributed
//! graph, baseline DistDGL vs MassiveGNN prefetch+eviction, and print the
//! headline comparison.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use massivegnn::{Engine, EngineConfig, Mode, PrefetchConfig};
use mgnn_graph::{DatasetKind, Scale};

fn main() {
    let mut cfg = EngineConfig {
        dataset: DatasetKind::Products,
        scale: Scale::Unit,
        num_parts: 2,
        trainers_per_part: 2,
        batch_size: 64,
        epochs: 4,
        fanouts: vec![10, 25],
        hidden_dim: 32,
        train_math: true,
        ..Default::default()
    };

    println!("== MassiveGNN quickstart ==");
    println!(
        "dataset: {}-like | partitions: {} | trainers/node: {} | epochs: {}",
        cfg.dataset.name(),
        cfg.num_parts,
        cfg.trainers_per_part,
        cfg.epochs
    );

    // Baseline DistDGL.
    let baseline_engine = Engine::build(cfg.clone());
    let baseline = baseline_engine.run();

    // MassiveGNN prefetch with eviction.
    cfg.mode = Mode::Prefetch(PrefetchConfig {
        f_h: 0.35,
        gamma: 0.995,
        delta: 32,
        ..Default::default()
    });
    let prefetch_engine = Engine::build(cfg);
    let prefetch = prefetch_engine.run();

    let b = baseline.aggregate_metrics();
    let p = prefetch.aggregate_metrics();
    println!();
    println!(
        "{:<30} {:>14} {:>14}",
        "", baseline.mode_label, "MassiveGNN"
    );
    println!(
        "{:<30} {:>14.3} {:>14.3}",
        "simulated training time (s)", baseline.makespan_s, prefetch.makespan_s
    );
    println!(
        "{:<30} {:>14} {:>14}",
        "remote nodes fetched", b.remote_nodes_fetched, p.remote_nodes_fetched
    );
    println!(
        "{:<30} {:>14.1} {:>14.1}",
        "hit rate (%)",
        100.0 * baseline.hit_rate(),
        100.0 * prefetch.hit_rate()
    );
    println!(
        "{:<30} {:>14.3} {:>14.3}",
        "final epoch loss",
        baseline.epoch_loss.last().copied().unwrap_or(f32::NAN),
        prefetch.epoch_loss.last().copied().unwrap_or(f32::NAN)
    );
    println!(
        "{:<30} {:>14.3} {:>14.3}",
        "validation accuracy",
        baseline_engine.evaluate(&baseline.final_params),
        prefetch_engine.evaluate(&prefetch.final_params)
    );
    let speedup = 100.0 * (1.0 - prefetch.makespan_s / baseline.makespan_s);
    println!();
    println!("end-to-end improvement: {speedup:.1}%  (paper reports 15–40%)");
    assert_eq!(
        baseline.epoch_loss, prefetch.epoch_loss,
        "prefetching must not change training math"
    );
    println!("training math identical in both modes ✓");
}
