//! The paper's motivating scenario at example scale: GraphSAGE node
//! classification on a products-like co-purchase graph partitioned over
//! several "compute nodes", comparing baseline, prefetch-without-eviction
//! and prefetch-with-eviction across node counts — a miniature of Fig. 6.
//!
//! ```bash
//! cargo run --release --example distributed_products
//! ```

use massivegnn::{Engine, EngineConfig, Mode, PrefetchConfig};
use mgnn_graph::{DatasetKind, Scale};
use mgnn_net::Backend;

fn main() {
    println!("== products-like scaling: baseline vs prefetch (CPU) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "#nodes", "DistDGL(s)", "Prefetch(s)", "+Evict(s)", "impr(%)", "hit(%)"
    );

    for num_parts in [2usize, 4] {
        let cfg = EngineConfig {
            dataset: DatasetKind::Products,
            scale: Scale::Small,
            num_parts,
            trainers_per_part: 4,
            batch_size: 128,
            epochs: 3,
            fanouts: vec![10, 25],
            hidden_dim: 32,
            backend: Backend::Cpu,
            train_math: false,
            ..Default::default()
        };

        let baseline = Engine::build(cfg.clone()).run();

        let mut no_evict = cfg.clone();
        no_evict.mode = Mode::Prefetch(
            PrefetchConfig {
                f_h: 0.25,
                ..Default::default()
            }
            .without_eviction(),
        );
        let pf = Engine::build(no_evict).run();

        let mut with_evict = cfg.clone();
        with_evict.mode = Mode::Prefetch(PrefetchConfig {
            f_h: 0.25,
            gamma: 0.995,
            delta: 64,
            ..Default::default()
        });
        let ev = Engine::build(with_evict).run();

        let impr = 100.0 * (1.0 - ev.makespan_s / baseline.makespan_s);
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>12.3} {:>9.1} {:>9.1}",
            num_parts,
            baseline.makespan_s,
            pf.makespan_s,
            ev.makespan_s,
            impr,
            100.0 * ev.hit_rate()
        );
    }
    println!();
    println!("expected shape: prefetch < baseline, eviction adds a few points,");
    println!("hit rate well above zero from degree-based initialization.");
}
