//! §V-A4 at example scale: the prefetch scheme under a 2-head GAT on the
//! largest (papers-like) input — demonstrating the scheme is architecture-
//! agnostic and that the memory-efficient S_A layout works (the paper uses
//! it for papers100M).
//!
//! ```bash
//! cargo run --release --example gat_papers
//! ```

use massivegnn::{Engine, EngineConfig, Mode, PrefetchConfig, ScoreLayout};
use mgnn_graph::{DatasetKind, Scale};
use mgnn_model::ModelKind;
use mgnn_net::Backend;

fn main() {
    let base = EngineConfig {
        dataset: DatasetKind::Papers,
        scale: Scale::Unit,
        num_parts: 2,
        trainers_per_part: 2,
        batch_size: 64,
        epochs: 3,
        fanouts: vec![10, 25],
        hidden_dim: 48,
        model: ModelKind::Gat,
        gat_heads: 2,
        train_math: true,
        ..Default::default()
    };

    println!("== GAT (2 heads) on papers-like, memory-efficient S_A ==");
    for backend in [Backend::Cpu, Backend::Gpu] {
        let mut cfg = base.clone();
        cfg.backend = backend;
        let baseline = Engine::build(cfg.clone()).run();

        cfg.mode = Mode::Prefetch(PrefetchConfig {
            f_h: 0.5,
            gamma: 0.995,
            delta: 64,
            layout: ScoreLayout::MemEfficient,
            ..Default::default()
        });
        let prefetch = Engine::build(cfg).run();

        let impr = 100.0 * (1.0 - prefetch.makespan_s / baseline.makespan_s);
        println!(
            "{}: baseline {:.3}s | prefetch {:.3}s | impr {:>5.1}% | hit {:.1}% | overlap {:.0}%",
            backend.name(),
            baseline.makespan_s,
            prefetch.makespan_s,
            impr,
            100.0 * prefetch.hit_rate(),
            100.0 * prefetch.mean_overlap_efficiency(),
        );
        println!(
            "   loss: {:?} (finite, decreasing ⇒ GAT backward is sound)",
            prefetch.epoch_loss
        );
    }
    println!();
    println!("paper: up to 39% (CPU) / 15% (GPU) for GAT on papers100M;");
    println!("CPU overlap near-perfect, GPU partial — same shape expected above.");
}
