//! Sweep the prefetcher's tunables (f_p^h, γ, Δ) on one configuration and
//! print time + hit rate per setting — a miniature of Figs. 12–13 and the
//! Table IV optimum search.
//!
//! ```bash
//! cargo run --release --example parameter_sweep
//! ```

use massivegnn::tradeoff::{classify, Quadrant};
use massivegnn::{Engine, EngineConfig, Mode, PrefetchConfig};
use mgnn_graph::{DatasetKind, Scale};

fn main() {
    let base = EngineConfig {
        dataset: DatasetKind::Products,
        scale: Scale::Unit,
        num_parts: 2,
        trainers_per_part: 2,
        batch_size: 64,
        epochs: 4,
        fanouts: vec![10, 25],
        hidden_dim: 32,
        ..Default::default()
    };

    let baseline = Engine::build(base.clone()).run();
    println!("baseline DistDGL: {:.3}s", baseline.makespan_s);
    println!();
    println!(
        "{:>6} {:>8} {:>6} {:>10} {:>8} {:>8}  quadrant",
        "f_h", "gamma", "delta", "time(s)", "impr(%)", "hit(%)"
    );

    let mut best: Option<(f64, String)> = None;
    for &f_h in &[0.15, 0.25, 0.35, 0.5] {
        for &gamma in &[0.95, 0.995] {
            for &delta in &[16usize, 64, 256] {
                let mut cfg = base.clone();
                cfg.mode = Mode::Prefetch(PrefetchConfig {
                    f_h,
                    gamma,
                    delta,
                    ..Default::default()
                });
                let r = Engine::build(cfg).run();
                let impr = 100.0 * (1.0 - r.makespan_s / baseline.makespan_s);
                let q = classify(gamma, delta);
                println!(
                    "{:>6} {:>8} {:>6} {:>10.3} {:>8.1} {:>8.1}  {:?}{}",
                    f_h,
                    gamma,
                    delta,
                    r.makespan_s,
                    impr,
                    100.0 * r.hit_rate(),
                    q,
                    if q == Quadrant::LowDecayLongInterval {
                        " *"
                    } else {
                        ""
                    }
                );
                let label = format!("f_h={f_h} γ={gamma} Δ={delta}");
                if best.as_ref().is_none_or(|(t, _)| r.makespan_s < *t) {
                    best = Some((r.makespan_s, label));
                }
            }
        }
    }
    let (t, label) = best.unwrap();
    println!();
    println!("optimal (Table IV style): {label} at {t:.3}s");
}
